"""Command-line interface: ``python -m repro``.

Subcommands::

    python -m repro list                         # architectures & experiments
    python -m repro run fig7a --scale 0.1        # regenerate a figure panel
    python -m repro run fig7a --jobs 8 --cache \\
        --json fig7a.json                        # parallel + cached sweep
    python -m repro cell direct-pnfs ior-write \\
        --clients 4 --scale 0.2                  # one (arch, workload) cell
    python -m repro metrics direct-pnfs ior-write \\
        --clients 4 --json out.json              # cell + metrics/utilisation
    python -m repro trace direct-pnfs ior-write \\
        --out run.trace.json                     # cell + Perfetto trace
    python -m repro profile direct-pnfs ior-write \\
        --clients 4 --top 25                     # cProfile one cell
    python -m repro torture --seeds 50 --jobs 8  # invariant-checked sweeps
    python -m repro torture --replay 7 --shrink  # minimal failing program
    python -m repro quickstart                   # the quickstart demo

Progress/ETA lines always go to stderr; results (tables, JSON with
``--json -``) own stdout.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_list(_args) -> int:
    from repro.bench.experiments import EXPERIMENTS
    from repro.cluster.configs import ARCHITECTURES

    print("architectures:")
    for name in sorted(ARCHITECTURES):
        print(f"  {name}")
    print("\nexperiments (figure panels):")
    for exp_id, exp in EXPERIMENTS.items():
        systems = ",".join(exp.systems)
        print(f"  {exp_id:9s} {exp.title}  [{exp.metric}; {systems}]")
    print("\nworkloads for `repro cell`:")
    for name in sorted(_WORKLOADS):
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    import json

    from repro.bench.experiments import EXPERIMENTS, run_experiment
    from repro.bench.report import experiment_report, format_table, shape_checks
    from repro.parallel import ProgressReporter, ResultCache, default_jobs, describe

    counts = [int(c) for c in args.clients.split(",")] if args.clients else None
    jobs = default_jobs(args.jobs)
    cache = ResultCache(args.cache_dir) if args.cache else None
    exp = EXPERIMENTS[args.experiment]
    total = len(exp.systems) * len(counts or exp.client_counts)
    reporter = ProgressReporter(total, label="cells")
    result = run_experiment(
        args.experiment,
        scale=args.scale,
        client_counts=counts,
        jobs=jobs,
        cache=cache,
        progress=lambda spec, res, wall, cached: reporter.update(
            describe(spec), wall, cached
        ),
    )
    reporter.close()

    # Human-readable output moves to stderr when the JSON document owns
    # stdout (`--json -`): stdout stays machine-parseable either way.
    out = sys.stderr if args.json == "-" else sys.stdout
    print(format_table(result), file=out)
    if args.chart:
        from repro.bench.charts import render_series

        print(file=out)
        print(render_series(result), file=out)
    ok = True
    for check in shape_checks(result):
        print("  ", check, file=out)
        ok = ok and check.ok
    if args.json:
        report = experiment_report(result)
        report["timing"] = result.parallel  # wall-clock: outside the hash
        text = json.dumps(report, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}", file=out)
    return 0 if ok else 1


_WORKLOADS = {
    "ior-write": lambda scale: _ior("write", scale),
    "ior-read": lambda scale: _ior("read", scale),
    "ior-write-8k": lambda scale: _ior("write", scale, block=8192),
    "ior-read-8k": lambda scale: _ior("read", scale, block=8192),
    "atlas": lambda scale: _mk("AtlasWorkload", scale),
    "btio": lambda scale: _mk("BtioWorkload", scale),
    "oltp": lambda scale: _mk("OltpWorkload", scale),
    "postmark": lambda scale: _mk("PostmarkWorkload", scale),
    "sshbuild": lambda scale: _mk("SshBuildWorkload", scale),
    "mdtest": lambda scale: _mk("MdtestWorkload", scale),
}


def _ior(op: str, scale: float, block: int = 4 * 1024 * 1024):
    from repro.workloads import IorWorkload

    return IorWorkload(op=op, block_size=block, scale=scale)


def _mk(name: str, scale: float):
    import repro.workloads as w

    return getattr(w, name)(scale=scale)


def _cmd_cell(args) -> int:
    from repro.bench.runner import run_cell

    workload = _WORKLOADS[args.workload](args.scale)
    result = run_cell(args.arch, workload, n_clients=args.clients)
    print(
        f"{args.arch} / {args.workload} @ {args.clients} clients "
        f"(scale {args.scale}):"
    )
    print(f"  makespan   : {result.makespan:.3f} s")
    print(f"  aggregate  : {result.aggregate_mbps:.1f} MB/s")
    print(f"  tps        : {result.transactions_per_second:.1f}")
    return 0


def _cmd_metrics(args) -> int:
    """Run one cell with the metrics registry attached and report it."""
    import json

    from repro.bench.report import format_metrics
    from repro.bench.runner import run_cell

    workload = _WORKLOADS[args.workload](args.scale)
    result = run_cell(
        args.arch,
        workload,
        n_clients=args.clients,
        metrics=True,
        sample_interval=args.interval,
    )
    print(
        f"{args.arch} / {args.workload} @ {args.clients} clients "
        f"(scale {args.scale}): {result.makespan:.3f} s makespan, "
        f"{result.aggregate_mbps:.1f} MB/s"
    )
    print(format_metrics(result))
    if args.json:
        report = {
            "arch": result.arch,
            "workload": result.workload,
            "n_clients": result.n_clients,
            "makespan": result.makespan,
            "total_bytes": result.total_bytes,
            "aggregate_mbps": result.aggregate_mbps,
            "engine": result.engine,
            "metrics": result.metrics,
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace(args) -> int:
    """Run one cell under a span collector and export a Chrome trace."""
    from repro.bench.runner import run_cell

    workload = _WORKLOADS[args.workload](args.scale)
    result = run_cell(
        args.arch, workload, n_clients=args.clients, trace=True
    )
    result.trace.write_chrome_trace(args.out)
    cats = {c: len(s) for c, s in sorted(result.trace.by_category().items())}
    print(
        f"{args.arch} / {args.workload} @ {args.clients} clients "
        f"(scale {args.scale}): {result.makespan:.3f} s makespan"
    )
    print(f"  {len(result.trace.spans)} spans: " + ", ".join(
        f"{n} {c}" for c, n in cats.items()
    ))
    print(f"wrote {args.out} (open at https://ui.perfetto.dev)")
    return 0


def _cmd_profile(args) -> int:
    """cProfile one cell: where do the simulation's cycles actually go?

    Prints the top-N functions by cumulative time (the measurement
    future perf PRs should quote); ``--json`` dumps them machine-
    readable, ``--json -`` to stdout with the human report on stderr.
    """
    import cProfile
    import io
    import json
    import pstats

    from repro.bench.runner import run_cell

    workload = _WORKLOADS[args.workload](args.scale)
    prof = cProfile.Profile()
    prof.enable()
    result = run_cell(args.arch, workload, n_clients=args.clients)
    prof.disable()

    out = sys.stderr if args.json == "-" else sys.stdout
    print(
        f"{args.arch} / {args.workload} @ {args.clients} clients "
        f"(scale {args.scale}): {result.makespan:.3f} s sim makespan, "
        f"{result.aggregate_mbps:.1f} MB/s",
        file=out,
    )
    stream = io.StringIO()
    stats = pstats.Stats(prof, stream=stream)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(stream.getvalue().rstrip(), file=out)

    if args.json:
        rows = [
            {
                "function": f"{path}:{line}({name})",
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
            for (path, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items()
        ]
        rows.sort(key=lambda r: r["cumtime"], reverse=True)
        payload = json.dumps(
            {
                "arch": args.arch,
                "workload": args.workload,
                "n_clients": args.clients,
                "scale": args.scale,
                "makespan": result.makespan,
                "top": rows[: args.top],
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}", file=out)
    return 0


def _cmd_torture(args) -> int:
    """Seeded torture sweeps, replay, and shrinking (repro.check)."""
    import json

    from repro.check import generate, run_episode, shrink_program
    from repro.check.runner import buggy_truncate_factory, buggy_writeback_factory

    arches = args.arch or ["direct-pnfs", "pnfs-2tier"]
    factory = None
    if args.buggy_writeback:
        factory = buggy_writeback_factory
    elif args.buggy_truncate:
        factory = buggy_truncate_factory
    metadata = args.metadata or args.buggy_truncate

    if args.replay is not None:
        program = generate(args.replay, metadata_ops=metadata)
        failing = None
        for arch in arches:
            res = run_episode(program, arch, client_factory=factory)
            status = "FAIL" if res.violations else "ok"
            print(
                f"seed {args.replay} / {arch}: {status}  "
                f"trace {res.trace_hash[:16]}  "
                f"({res.op_count} ops, {len(program.faults)} faults, "
                f"{res.stats.get('sim_time', 0)} sim s)"
            )
            for v in res.violations:
                print(f"  - {v}")
            if res.violations and failing is None:
                failing = arch
        if failing is None:
            return 0
        if args.shrink:
            print(f"\nshrinking against {failing} ...")
            minimal, runs = shrink_program(
                program, failing, client_factory=factory
            )
            print(
                f"minimal failing program after {runs} runs: "
                f"{minimal.op_count} ops, {len(minimal.faults)} faults"
            )
            print(minimal.to_json())
            if args.json:
                with open(args.json, "w") as fh:
                    fh.write(minimal.to_json())
                print(f"wrote {args.json}")
        return 1

    from repro.check.runner import sweep
    from repro.parallel import ProgressReporter, default_jobs

    total = args.seeds * len(arches)
    reporter = ProgressReporter(total, label="episodes")

    def progress(res, wall, cached):
        reporter.update(f"seed {res.seed} / {res.arch}", wall, cached)
        if res.violations:
            reporter.note(f"FAIL seed {res.seed} / {res.arch}:")
            for v in res.violations:
                reporter.note(f"  - {v}")

    results = sweep(
        arches,
        args.seeds,
        start_seed=args.start_seed,
        client_factory=factory,
        progress=progress,
        jobs=default_jobs(args.jobs),
        metadata=metadata,
    )
    reporter.close()
    failures = [r for r in results if r.violations]
    print(
        f"{total - len(failures)}/{total} episodes clean "
        f"(seeds {args.start_seed}..{args.start_seed + args.seeds - 1}, "
        f"arches: {', '.join(arches)})"
    )
    if not failures:
        return 0
    first = failures[0]
    print(
        f"\nreproduce with: repro torture --replay {first.seed} "
        f"--arch {first.arch} --shrink"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                [
                    {
                        "seed": r.seed,
                        "arch": r.arch,
                        "violations": r.violations,
                        "trace_hash": r.trace_hash,
                        "program": json.loads(generate(r.seed).to_json()),
                    }
                    for r in failures
                ],
                fh,
                indent=2,
            )
        print(f"wrote {args.json}")
    return 1


def _cmd_quickstart(_args) -> int:
    import pathlib
    import runpy

    demo = pathlib.Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    runpy.run_path(str(demo), run_name="__main__")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Direct-pNFS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list architectures, experiments, workloads")

    p_run = sub.add_parser("run", help="regenerate one figure panel")
    p_run.add_argument("experiment", help="e.g. fig6a, fig7c, fig8d")
    p_run.add_argument("--scale", type=float, default=0.1)
    p_run.add_argument("--clients", help="comma-separated counts, e.g. 1,4,8")
    p_run.add_argument(
        "--chart", action="store_true", help="also render an ASCII bar chart"
    )
    p_run.add_argument(
        "--jobs",
        type=int,
        help="worker processes for the cell fan-out (default: REPRO_JOBS or 1; "
        "results are identical whatever the value)",
    )
    p_run.add_argument(
        "--cache",
        action="store_true",
        help="skip cells already in the content-addressed result cache",
    )
    p_run.add_argument(
        "--cache-dir",
        help="cache root (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    p_run.add_argument(
        "--json",
        help="write the deterministic result report as JSON "
        "('-' for stdout; progress and tables then move to stderr)",
    )

    p_cell = sub.add_parser("cell", help="run one (architecture, workload) cell")
    p_cell.add_argument("arch", help="direct-pnfs | pvfs2 | pnfs-2tier | pnfs-3tier | nfsv4")
    p_cell.add_argument("workload", choices=sorted(_WORKLOADS))
    p_cell.add_argument("--clients", type=int, default=4)
    p_cell.add_argument("--scale", type=float, default=0.1)

    p_metrics = sub.add_parser(
        "metrics", help="run one cell with the metrics registry attached"
    )
    p_metrics.add_argument("arch", help="architecture (see `repro list`)")
    p_metrics.add_argument("workload", choices=sorted(_WORKLOADS))
    p_metrics.add_argument("--clients", type=int, default=4)
    p_metrics.add_argument("--scale", type=float, default=0.1)
    p_metrics.add_argument(
        "--interval", type=float, default=0.25, help="sampler interval (sim s)"
    )
    p_metrics.add_argument("--json", help="also write the full report as JSON")

    p_trace = sub.add_parser(
        "trace", help="run one cell and export a Chrome/Perfetto trace"
    )
    p_trace.add_argument("arch", help="architecture (see `repro list`)")
    p_trace.add_argument("workload", choices=sorted(_WORKLOADS))
    p_trace.add_argument("--clients", type=int, default=4)
    p_trace.add_argument("--scale", type=float, default=0.1)
    p_trace.add_argument(
        "--out", default="repro.trace.json", help="trace file path"
    )

    p_torture = sub.add_parser(
        "torture",
        help="seeded workload×fault torture sweeps with invariant checkers",
    )
    p_torture.add_argument(
        "--arch",
        action="append",
        help="architecture to torture (repeatable; default: direct-pnfs, "
        "pnfs-2tier)",
    )
    p_torture.add_argument("--seeds", type=int, default=25, help="seed budget")
    p_torture.add_argument("--start-seed", type=int, default=0)
    p_torture.add_argument(
        "--replay", type=int, help="replay one seed instead of sweeping"
    )
    p_torture.add_argument(
        "--shrink",
        action="store_true",
        help="with --replay: print the minimal failing program",
    )
    p_torture.add_argument(
        "--buggy-writeback",
        action="store_true",
        help="reintroduce the pre-fix silent write-back loss "
        "(demonstrates checker power)",
    )
    p_torture.add_argument(
        "--metadata",
        action="store_true",
        help="generate metadata/namespace op kinds (truncate, remove+"
        "recreate, rename, mkdir/readdir, getattr) with coherence oracles",
    )
    p_torture.add_argument(
        "--buggy-truncate",
        action="store_true",
        help="reintroduce the pre-fix attr-cache-only truncate (implies "
        "--metadata; demonstrates checker power)",
    )
    p_torture.add_argument("--json", help="write failing programs as JSON")
    p_torture.add_argument(
        "--jobs",
        type=int,
        help="worker processes for the episode fan-out (default: REPRO_JOBS "
        "or 1; trace hashes are identical whatever the value)",
    )

    p_profile = sub.add_parser(
        "profile", help="cProfile one cell and print the hottest functions"
    )
    p_profile.add_argument("arch", help="architecture (see `repro list`)")
    p_profile.add_argument("workload", choices=sorted(_WORKLOADS))
    p_profile.add_argument("--clients", type=int, default=4)
    p_profile.add_argument("--scale", type=float, default=0.1)
    p_profile.add_argument(
        "--top", type=int, default=25, help="functions to print (by cumtime)"
    )
    p_profile.add_argument(
        "--json", help="dump the top functions as JSON ('-' for stdout)"
    )

    sub.add_parser("quickstart", help="run the quickstart demo")

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "cell": _cmd_cell,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "torture": _cmd_torture,
        "quickstart": _cmd_quickstart,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
