"""Content-addressed on-disk result cache for experiment jobs.

A cache key is the sha256 of two things:

* the **job spec** — the canonical JSON (sorted keys) of the picklable
  dict that fully determines the job (architecture, workload
  parameters, client count, scale, network model, seed, ...); and
* the **code fingerprint** — a sha256 over every ``repro`` source file
  (path + bytes).  Any edit anywhere in ``src/repro`` changes the
  fingerprint and therefore invalidates *every* cached result.

Because every job in this repo is a pure function of its spec (the
simulator is deterministic and all randomness is seeded from the spec),
"same key" really does mean "same result", and the cache can hand back
the stored value instead of re-simulating the cell.  This is coarse on
purpose: a content hash of the whole package never serves a stale
result, at the cost of a full re-run after any code change — the right
trade for a result cache whose only job is to make *unchanged* figure
panels free to re-run.

Values are stored as pickles under ``<root>/<key[:2]>/<key>.pkl`` and
written atomically (tmp file + ``os.replace``), so concurrent workers
racing to fill the same key are harmless.  The root defaults to
``.repro-cache`` under the current directory and can be pointed
elsewhere via ``REPRO_CACHE_DIR`` or the ``root`` argument.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle

__all__ = ["ResultCache", "code_fingerprint", "spec_key"]

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """sha256 over every ``repro`` source file, cached per process."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        pkg = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(pkg.rglob("*.py")):
            digest.update(str(path.relative_to(pkg)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def spec_key(spec: dict, fingerprint: str | None = None) -> str:
    """Content-addressed key for ``spec`` under the current code."""
    canon = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    fp = fingerprint if fingerprint is not None else code_fingerprint()
    return hashlib.sha256(f"{fp}\0{canon}".encode()).hexdigest()


class ResultCache:
    """Pickle store addressed by :func:`spec_key`.

    ``get`` / ``put`` never raise on cache trouble (corrupt pickle,
    missing directory, unpicklable value): a broken cache must degrade
    to "miss", never break the run that was only trying to go faster.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        root = root or os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, spec: dict) -> str:
        return spec_key(spec)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """Cached value for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic; best-effort)."""
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
