"""Picklable job specs + the worker entry point.

A *job spec* is a plain JSON-able dict that fully determines one unit
of embarrassingly parallel work.  Workers never receive live objects
(workload instances hold lambdas, deployments hold a whole simulator);
they receive the spec and rebuild everything from it, which is exactly
what makes parallel runs bit-identical to serial ones: each job is a
pure function of its spec, whichever process runs it.

Two kinds exist today:

* ``figure-cell`` — one (system, client-count) cell of a figure panel
  from :data:`repro.bench.experiments.EXPERIMENTS`; the worker rebuilds
  the workload from the experiment's factory and runs
  :func:`repro.bench.runner.run_cell`.  Returns a ``RunResult``.
* ``torture`` — one torture episode: the worker regenerates the seeded
  program and runs :func:`repro.check.runner.run_episode`.  Returns an
  ``EpisodeResult`` whose ``trace_hash`` is the parallel-equals-serial
  oracle.

:func:`run_job` is the single dispatch point and must stay importable
at module top level — ``ProcessPoolExecutor`` pickles it by reference
under every start method.
"""

from __future__ import annotations

import time

__all__ = ["figure_cell_spec", "torture_spec", "run_job", "timed_job"]


def figure_cell_spec(
    exp_id: str,
    system: str,
    n_clients: int,
    scale: float,
    net_model: str = "chunked",
) -> dict:
    """Spec for one (system, client-count) cell of figure ``exp_id``."""
    return {
        "kind": "figure-cell",
        "exp_id": exp_id,
        "system": system,
        "n_clients": n_clients,
        "scale": scale,
        "net_model": net_model,
    }


def torture_spec(
    seed: int,
    arch: str,
    buggy_writeback: bool = False,
    buggy_truncate: bool = False,
    metadata: bool = False,
) -> dict:
    """Spec for one torture episode (seed x architecture)."""
    return {
        "kind": "torture",
        "seed": seed,
        "arch": arch,
        "buggy_writeback": buggy_writeback,
        "buggy_truncate": buggy_truncate,
        "metadata": metadata,
    }


def describe(spec: dict) -> str:
    """One-line human label for progress output."""
    if spec["kind"] == "figure-cell":
        return f"{spec['exp_id']} {spec['system']} n={spec['n_clients']}"
    if spec["kind"] == "torture":
        return f"torture seed {spec['seed']} / {spec['arch']}"
    return repr(spec)


def _run_figure_cell(spec: dict):
    from repro.bench.experiments import EXPERIMENTS
    from repro.bench.runner import run_cell

    exp = EXPERIMENTS[spec["exp_id"]]
    workload = exp.workload(spec["scale"] * exp.scale_factor)
    return run_cell(
        spec["system"],
        workload,
        spec["n_clients"],
        net_bw=exp.net_bw,
        nfs_overrides=exp.nfs_overrides or None,
        pvfs_overrides=exp.pvfs_overrides or None,
        net_model=spec["net_model"],
    )


def _run_torture(spec: dict):
    from repro.check.program import generate
    from repro.check.runner import (
        buggy_truncate_factory,
        buggy_writeback_factory,
        run_episode,
    )

    program = generate(spec["seed"], metadata_ops=spec.get("metadata", False))
    factory = None
    if spec.get("buggy_writeback"):
        factory = buggy_writeback_factory
    elif spec.get("buggy_truncate"):
        factory = buggy_truncate_factory
    return run_episode(program, spec["arch"], client_factory=factory)


_RUNNERS = {
    "figure-cell": _run_figure_cell,
    "torture": _run_torture,
}


def run_job(spec: dict):
    """Execute one job spec; pure function of ``spec``."""
    try:
        runner = _RUNNERS[spec["kind"]]
    except KeyError:
        raise ValueError(f"unknown job kind {spec.get('kind')!r}") from None
    return runner(spec)


def timed_job(spec: dict):
    """``(wall_seconds, result)`` — the worker-side entry point.

    Timing in the worker (not submit-to-done in the parent) keeps the
    per-job cost honest: queueing delay behind a busy pool is not work.
    """
    t0 = time.perf_counter()
    result = run_job(spec)
    return time.perf_counter() - t0, result
