"""Progress/ETA reporting for job batches — always on stderr.

Results (tables, JSON) belong on stdout; progress is commentary and
goes to stderr so ``repro run ... --json - > out.json`` stays a valid
JSON document even while forty cells chatter about their ETAs.  The
reporter is also the single place per-episode/per-cell lines are
printed from, which is what keeps sweep output from interleaving with
results.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Prints ``[done/total] label wall (eta Ns)`` lines to a stream.

    ETA is batch elapsed time scaled by remaining/completed — it
    already accounts for however many workers are draining the batch,
    because elapsed time does.
    """

    def __init__(self, total: int, label: str = "jobs", stream=None):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.cached = 0
        self._t0 = time.perf_counter()

    def update(self, desc: str, wall: float = 0.0, cached: bool = False) -> None:
        """Record one finished job and print its progress line."""
        self.done += 1
        if cached:
            self.cached += 1
        elapsed = time.perf_counter() - self._t0
        remaining = self.total - self.done
        eta = elapsed / self.done * remaining if self.done else 0.0
        tail = "cached" if cached else f"{wall:.2f}s"
        print(
            f"[{self.done}/{self.total}] {desc}  {tail}  (eta {eta:.0f}s)",
            file=self.stream,
        )

    def note(self, text: str) -> None:
        """Out-of-band commentary (violations, warnings) — same stream."""
        print(text, file=self.stream)

    def close(self) -> None:
        elapsed = time.perf_counter() - self._t0
        cached = f", {self.cached} cached" if self.cached else ""
        print(
            f"{self.done}/{self.total} {self.label} in {elapsed:.1f}s{cached}",
            file=self.stream,
        )
