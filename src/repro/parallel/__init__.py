"""Parallel experiment engine: process-pool fan-out + result caching.

See :mod:`repro.parallel.engine` for the execution model (serial
reference path, process pool, determinism guarantee),
:mod:`repro.parallel.cache` for the content-addressed result cache, and
:mod:`repro.parallel.jobs` for the picklable job specs.
"""

from repro.parallel.cache import ResultCache, code_fingerprint, spec_key
from repro.parallel.engine import EngineReport, default_jobs, run_jobs
from repro.parallel.jobs import describe, figure_cell_spec, run_job, torture_spec
from repro.parallel.reporter import ProgressReporter

__all__ = [
    "EngineReport",
    "ProgressReporter",
    "ResultCache",
    "code_fingerprint",
    "describe",
    "default_jobs",
    "figure_cell_spec",
    "run_job",
    "run_jobs",
    "spec_key",
    "torture_spec",
]
