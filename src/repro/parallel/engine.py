"""Process-pool job engine: fan experiment cells across cores.

Every figure panel and every torture sweep in this repo is a batch of
independent jobs — (architecture x client-count) cells, (seed x arch)
episodes — and each job is a pure, deterministic function of a small
picklable spec (:mod:`repro.parallel.jobs`).  ``run_jobs`` maps a list
of specs to their results:

* ``jobs=1`` (the default) runs in-process, serially, in order — this
  is the reference execution, byte-identical to what the callers did
  before the engine existed;
* ``jobs=N`` fans the batch over a ``ProcessPoolExecutor``.  Workers
  rebuild everything from the spec, so results do not depend on which
  process ran them or in what order they finished: the parallel run is
  hash-identical to the serial one (``repro.check``'s trace hash and
  the benchmark determinism gate are the enforced oracles);
* an optional :class:`~repro.parallel.cache.ResultCache` short-circuits
  jobs whose (spec, code-fingerprint) key already has a stored result.

Results always come back in input order.  The accompanying
:class:`EngineReport` aggregates per-job wall time, cache hits, and the
simulated-engine event counters — surfaced through the ``--json``
outputs and attachable to a :class:`repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.parallel.jobs import describe, timed_job

__all__ = ["EngineReport", "default_jobs", "run_jobs"]


def default_jobs(requested: int | None = None) -> int:
    """Worker count: ``requested``, else ``REPRO_JOBS``, else 1 (serial)."""
    if requested is not None and requested > 0:
        return requested
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return 1


@dataclass
class EngineReport:
    """Cost telemetry for one batch."""

    workers: int
    jobs: int = 0
    cache_hits: int = 0
    #: Elapsed wall seconds for the whole batch (what the user waited).
    wall_seconds: float = 0.0
    #: Sum of per-job worker wall seconds (the serial-equivalent cost);
    #: cache hits contribute nothing.
    job_seconds: float = 0.0
    #: Simulated-engine event totals summed over jobs that expose them.
    events_processed: int = 0
    per_job: list = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Serial-equivalent cost over elapsed wall: parallel+cache win."""
        return self.job_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
            "job_seconds": self.job_seconds,
            "events_processed": self.events_processed,
            "speedup": self.speedup,
            "per_job": self.per_job,
        }

    def to_metrics(self, registry) -> None:
        """Export the batch totals as ``repro.obs`` counters."""
        pairs = [
            ("parallel.jobs", self.jobs),
            ("parallel.cache_hits", self.cache_hits),
            ("parallel.workers", self.workers),
            ("parallel.job_seconds", self.job_seconds),
            ("parallel.wall_seconds", self.wall_seconds),
            ("parallel.events_processed", self.events_processed),
        ]
        for name, value in pairs:
            registry.counter(name).inc(value)

    def _record(self, spec: dict, wall: float, cached: bool, result) -> None:
        self.jobs += 1
        if cached:
            self.cache_hits += 1
        else:
            self.job_seconds += wall
        engine = getattr(result, "engine", None)
        if isinstance(engine, dict):
            self.events_processed += int(engine.get("events_processed", 0))
        self.per_job.append(
            {"job": describe(spec), "wall_seconds": wall, "cached": cached}
        )


def run_jobs(specs, jobs: int = 1, cache=None, progress=None):
    """Execute every spec; return ``(results_in_input_order, report)``.

    ``progress(spec, result, wall, cached)`` is called once per
    finished job, in completion order (input order when serial).
    """
    specs = list(specs)
    t0 = time.perf_counter()
    workers = max(1, min(jobs, len(specs) or 1))
    report = EngineReport(workers=workers)
    results: list = [None] * len(specs)

    def finish(i, spec, result, wall, cached):
        results[i] = result
        report._record(spec, wall, cached, result)
        if cache is not None and not cached:
            cache.put(keys[i], result)
        if progress is not None:
            progress(spec, result, wall, cached)

    keys = [cache.key_for(s) for s in specs] if cache is not None else [None] * len(specs)
    todo: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(keys[i]) if cache is not None else None
        if hit is not None:
            finish(i, spec, hit, 0.0, cached=True)
        else:
            todo.append(i)

    if workers <= 1 or len(todo) <= 1:
        for i in todo:
            wall, result = timed_job(specs[i])
            finish(i, specs[i], result, wall, cached=False)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(timed_job, specs[i]): i for i in todo}
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    i = pending.pop(fut)
                    wall, result = fut.result()
                    finish(i, specs[i], result, wall, cached=False)

    report.wall_seconds = time.perf_counter() - t0
    return results, report
