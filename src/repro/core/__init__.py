"""Direct-pNFS: the paper's primary contribution.

Direct-pNFS (§4) lets an *unmodified* NFSv4.1 client reach a parallel
file system's storage nodes directly:

* the **layout translator** (:mod:`repro.core.layout_translator`)
  converts the parallel FS's own data distribution into a pNFS
  file-based layout, without interpreting file-system-specific
  information — only the aggregation type and its parameters cross the
  boundary;
* **aggregation drivers** (:mod:`repro.core.aggregation`) give clients
  a compact, pluggable way to understand non-round-robin placements
  (variable stripes, replication, hierarchical striping);
* **data servers** (:mod:`repro.core.data_server`) are stock NFSv4.1
  servers colocated with storage nodes, reaching local data through a
  loopback conduit — no inter-server data traffic;
* :mod:`repro.core.system` assembles a complete Direct-pNFS deployment
  over any :class:`~repro.pvfs2.system.Pvfs2System`.
"""

from repro.core.aggregation import (
    AggregationDriver,
    DeviceCycleDriver,
    HierarchicalDriver,
    IoSegment,
    ReplicatedDriver,
    RoundRobinDriver,
    VarStripDriver,
    driver_for,
    register_driver,
)
from repro.core.layout_translator import LayoutTranslator
from repro.core.data_server import build_data_server
from repro.core.system import DirectPnfsSystem
from repro.core.multi_mds import ShardedDirectPnfs, ShardedPvfs2System

__all__ = [
    "AggregationDriver",
    "DeviceCycleDriver",
    "DirectPnfsSystem",
    "HierarchicalDriver",
    "IoSegment",
    "LayoutTranslator",
    "ReplicatedDriver",
    "RoundRobinDriver",
    "ShardedDirectPnfs",
    "ShardedPvfs2System",
    "VarStripDriver",
    "build_data_server",
    "driver_for",
    "register_driver",
]
