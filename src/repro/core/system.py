"""Assemble a complete Direct-pNFS deployment (paper Figures 4 and 5).

Given a running :class:`~repro.pvfs2.system.Pvfs2System`:

* every storage node gets a data server (NFSv4.1 over the local
  conduit);
* the PVFS2 metadata node also hosts the pNFS metadata server — pNFS
  and parallel-FS metadata components co-exist on one node, eliminating
  remote parallel-FS metadata requests from the pNFS server (§4.1);
* the metadata server's layout provider is the layout translator.

Clients are stock :class:`~repro.pnfs.client.PnfsClient` instances — no
file-system-specific layout driver anywhere on the client.
"""

from __future__ import annotations

from repro.core.data_server import DEFAULT_LOOPBACK_COPY, build_data_server
from repro.core.layout_translator import LayoutTranslator
from repro.nfs.config import NfsConfig
from repro.pnfs.server import PnfsMetadataServer
from repro.pvfs2.system import Pvfs2System
from repro.sim.engine import Simulator
from repro.sim.node import Node

__all__ = ["DirectPnfsSystem"]


class DirectPnfsSystem:
    """A running Direct-pNFS file system exported from a parallel FS."""

    label = "direct-pnfs"

    def __init__(
        self,
        sim: Simulator,
        pvfs: Pvfs2System,
        cfg: NfsConfig | None = None,
        loopback_copy_per_byte: float = DEFAULT_LOOPBACK_COPY,
    ):
        self.sim = sim
        self.pvfs = pvfs
        self.cfg = cfg or NfsConfig()
        # One data server per storage node, in daemon order so the
        # identity device mapping lines up with the distribution.
        self.data_servers = [
            build_data_server(
                sim, node, pvfs, self.cfg, loopback_copy_per_byte=loopback_copy_per_byte
            )
            for node in pvfs.storage_nodes
        ]
        # pNFS MDS colocated with the parallel FS MDS; its backend is a
        # full parallel-FS client whose metadata traffic is loopback.
        self.mds_backend = pvfs.make_client(pvfs.mds_node)
        self.translator = LayoutTranslator(self.mds_backend)
        self.mds = PnfsMetadataServer(
            sim,
            pvfs.mds_node,
            self.mds_backend,
            self.cfg,
            self.data_servers,
            self.translator,
            name=f"{pvfs.mds_node.name}.direct-mds",
        )

    def make_client(self, node: Node):
        """An unmodified NFSv4.1 client with the file layout driver."""
        # Imported here: repro.pnfs.client itself imports the
        # aggregation-driver registry from repro.core.
        from repro.pnfs.client import PnfsClient

        client = PnfsClient(self.sim, node, self.mds, self.cfg)
        client.label = self.label
        return client

    # -- fault-injection targets -------------------------------------------
    def data_server_for(self, node: Node | str):
        """The data-server service hosted on ``node`` (injector target).

        Failing ``data_server_for(n).rpc`` kills the NFS endpoint while
        the node's parallel-FS daemon keeps running — the scenario where
        clients fall back to proxied I/O through the MDS (§5) and all
        data stays reachable.
        """
        name = node.name if isinstance(node, Node) else node
        for ds in self.data_servers:
            if ds.node.name == name:
                return ds
        raise KeyError(f"no data server on node {name!r}")

    def kill_data_server(self, node: Node | str) -> None:
        """Fail-stop the data-server service on ``node``."""
        self.data_server_for(node).rpc.fail()

    def restart_data_server(self, node: Node | str) -> None:
        """Bring the data-server service on ``node`` back up."""
        self.data_server_for(node).rpc.restore()
