"""Extension: decentralised metadata (the paper's future-work item).

§6.4.3 closes: "NFSv4 relies on a central metadata server, effectively
recentralizing the decentralized parallel file system metadata
protocol... the sharp contrast in metadata management technique between
NFSv4 and parallel file systems merits further study."

This module is that study, as a labelled **extension beyond the paper**:
the namespace is hash-partitioned across several PVFS2 metadata servers
(as real PVFS2 supports), and Direct-pNFS gains one pNFS metadata
server per shard.  Sharding is by the subtree two levels deep; the root
and top-level directories are *broadcast* (replicated on every shard)
so each shard resolves its subtrees locally.  Clients route operations
by path; data placement is unchanged (all shards share the same storage
daemons), so the data-path results of the paper are unaffected while
metadata throughput scales with the shard count — quantified by the
mdtest workload in ``benchmarks/test_metadata_scaling.py`` (which also
records the caveat: with PVFS2's synchronous metadata journalling on,
the per-create daemon-side disk work does not shard and caps the gain).

Restrictions (documented, enforced): a rename may not cross shards or
move broadcast entries, and directory listings of broadcast paths are
shard unions.
"""

from __future__ import annotations

from repro.core.data_server import (
    DEFAULT_LOOPBACK_COPY,
    DEFAULT_LOOPBACK_READ_EXTRA,
    build_data_server,
)
from repro.core.layout_translator import LayoutTranslator
from repro.nfs.config import NfsConfig
from repro.pnfs.server import PnfsMetadataServer
from repro.pvfs2.client import Pvfs2Client
from repro.pvfs2.config import Pvfs2Config
from repro.pvfs2.metadata import MetadataServer
from repro.pvfs2.storage import StorageDaemon
from repro.sim.engine import Simulator
from repro.sim.node import Node
from repro.vfs.api import FileSystemClient, FsError, OpenFile, split_path

__all__ = ["ShardedPvfs2System", "ShardedDirectPnfs", "shard_of"]

#: Handle-space stride so every shard's namespace/datafile handles are
#: globally unique.
SHARD_HANDLE_STRIDE = 1 << 32


def _fnv(text: str) -> int:
    """Stable, implementation-independent hash (FNV-1a 32-bit)."""
    h = 2166136261
    for ch in text.encode():
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return h


def shard_of(path: str, nshards: int) -> int:
    """Deterministic shard for a path.

    Sharding is by the subtree rooted two levels deep: the first two
    path components are hashed.  Top-level directories are *broadcast*
    (they exist on every shard) so that deeper subtrees can resolve
    locally; see :meth:`ShardedPvfs2Client.mkdir`.
    """
    parts = split_path(path)
    if not parts:
        return 0
    return _fnv("/".join(parts[:2])) % nshards


def is_broadcast_path(path: str) -> bool:
    """Top-level directories (and the root) are replicated on all shards."""
    return len(split_path(path)) <= 1


class ShardedPvfs2System:
    """A PVFS2 deployment with ``n_meta`` hash-partitioned MDSes.

    All shards share the same storage daemons (data placement is
    orthogonal to namespace partitioning).
    """

    def __init__(
        self,
        sim: Simulator,
        storage_nodes: list[Node],
        cfg: Pvfs2Config | None = None,
        n_meta: int = 2,
    ):
        if not 1 <= n_meta <= len(storage_nodes):
            raise ValueError("need 1..n_storage metadata servers")
        self.sim = sim
        self.cfg = cfg or Pvfs2Config()
        self.storage_nodes = storage_nodes
        self.daemons = [StorageDaemon(sim, node, self.cfg) for node in storage_nodes]
        self.metadata_servers: list[MetadataServer] = []
        for k in range(n_meta):
            mds = MetadataServer(
                sim,
                storage_nodes[k],
                self.daemons,
                self.cfg,
                name=f"{storage_nodes[k].name}.pvfs2-mds{k}",
            )
            # Disjoint handle spaces across shards.
            mds.namespace._next_handle = k * SHARD_HANDLE_STRIDE + 2
            mds.namespace.root.handle = k * SHARD_HANDLE_STRIDE + 1
            mds.namespace._by_handle = {mds.namespace.root.handle: mds.namespace.root}
            mds._next_dfile = k * SHARD_HANDLE_STRIDE + 1
            self.metadata_servers.append(mds)

    @property
    def n_meta(self) -> int:
        return len(self.metadata_servers)

    def mds_for_path(self, path: str) -> MetadataServer:
        return self.metadata_servers[shard_of(path, self.n_meta)]

    def mds_for_handle(self, handle: int) -> MetadataServer:
        return self.metadata_servers[handle // SHARD_HANDLE_STRIDE]

    def make_client(self, node: Node, local_only: bool = False) -> "ShardedPvfs2Client":
        return ShardedPvfs2Client(self, node, local_only=local_only)


class _ShardRouting:
    """Routing shared by the PVFS2- and pNFS-level sharded clients.

    ``self._shards`` must be a list of per-shard FileSystemClients.
    Top-level directories are broadcast: mkdir creates them on every
    shard (so deep subtrees resolve locally), readdir unions children
    across shards, and remove attempts every shard.
    """

    _shards: list

    def _shard(self, path: str):
        return self._shards[shard_of(path, len(self._shards))]

    def create(self, path: str):
        return (yield from self._shard(path).create(path))

    def open(self, path: str, write: bool = True):
        return (yield from self._shard(path).open(path, write=write))

    def read(self, f: OpenFile, offset, nbytes):
        return (yield from f.client.read(f, offset, nbytes))

    def write(self, f: OpenFile, offset, payload):
        return (yield from f.client.write(f, offset, payload))

    def fsync(self, f: OpenFile):
        return (yield from f.client.fsync(f))

    def close(self, f: OpenFile):
        return (yield from f.client.close(f))

    def getattr(self, path: str):
        return (yield from self._shard(path).getattr(path))

    def mkdir(self, path: str):
        if is_broadcast_path(path):
            for shard in self._shards:
                yield from shard.mkdir(path)
            return None
        return (yield from self._shard(path).mkdir(path))

    def readdir(self, path: str):
        if is_broadcast_path(path):
            names: set[str] = set()
            for shard in self._shards:
                names.update((yield from shard.readdir(path)))
            return sorted(names)
        return (yield from self._shard(path).readdir(path))

    def remove(self, path: str):
        if is_broadcast_path(path):
            from repro.vfs.api import NoEntry

            removed = False
            for shard in self._shards:
                try:
                    yield from shard.remove(path)
                    removed = True
                except NoEntry:
                    continue
            if not removed:
                raise NoEntry(path)
            return None
        return (yield from self._shard(path).remove(path))

    def rename(self, old: str, new: str):
        if is_broadcast_path(old) or is_broadcast_path(new):
            raise FsError("rename of a broadcast (top-level) entry is not supported")
        if shard_of(old, len(self._shards)) != shard_of(new, len(self._shards)):
            raise FsError(
                f"rename across metadata shards is not supported: {old} -> {new}"
            )
        return (yield from self._shard(old).rename(old, new))

    def truncate(self, path: str, size: int):
        return (yield from self._shard(path).truncate(path, size))

    def setattr(self, path: str, mode=None):
        return (yield from self._shard(path).setattr(path, mode=mode))


class ShardedPvfs2Client(_ShardRouting, FileSystemClient):
    """Routes each operation to the shard owning its path."""

    label = "pvfs2-sharded"

    def __init__(self, system: ShardedPvfs2System, node: Node, local_only: bool = False):
        self.system = system
        self.node = node
        self._shards = [
            Pvfs2Client(
                system.sim, node, mds, system.daemons, system.cfg, local_only=local_only
            )
            for mds in system.metadata_servers
        ]

    def _shard_by_handle(self, handle: int) -> Pvfs2Client:
        return self._shards[handle // SHARD_HANDLE_STRIDE]

    def mount(self):
        infos = []
        for shard in self._shards:
            infos.append((yield from shard.mount()))
        return infos[0]

    def open_by_handle(self, handle: int):
        return (yield from self._shard_by_handle(handle).open_by_handle(handle))

    def getattr_handle(self, handle: int):
        return (yield from self._shard_by_handle(handle).getattr_handle(handle))

    def size_hint(self, handle, size):
        return (yield from self._shard_by_handle(handle).size_hint(handle, size))


class ShardedDirectPnfs:
    """Direct-pNFS over a sharded-metadata PVFS2 (extension).

    One pNFS metadata server per PVFS2 shard, colocated with it; data
    servers are exactly as in the base system.  Clients route control
    operations by path and keep per-shard sessions — the decentralised
    counterpart of :class:`repro.core.system.DirectPnfsSystem`.
    """

    label = "direct-pnfs-sharded"

    def __init__(
        self,
        sim: Simulator,
        pvfs: ShardedPvfs2System,
        cfg: NfsConfig | None = None,
    ):
        self.sim = sim
        self.pvfs = pvfs
        self.cfg = cfg or NfsConfig()
        self.data_servers = [
            build_data_server(
                sim,
                node,
                pvfs,
                self.cfg,
                loopback_copy_per_byte=DEFAULT_LOOPBACK_COPY,
                loopback_read_extra_per_byte=DEFAULT_LOOPBACK_READ_EXTRA,
            )
            for node in pvfs.storage_nodes
        ]
        self.mds_list: list[PnfsMetadataServer] = []
        self._backends: list[ShardedPvfs2Client] = []
        for k, mds in enumerate(pvfs.metadata_servers):
            backend = pvfs.make_client(mds.node)
            translator = LayoutTranslator(backend)
            self.mds_list.append(
                PnfsMetadataServer(
                    sim,
                    mds.node,
                    backend,
                    self.cfg,
                    self.data_servers,
                    translator,
                    name=f"{mds.node.name}.direct-mds{k}",
                )
            )
            self._backends.append(backend)

    def make_client(self, node: Node) -> "ShardedPnfsRouter":
        return ShardedPnfsRouter(self, node)


class ShardedPnfsRouter(_ShardRouting, FileSystemClient):
    """Client-side router over per-shard pNFS clients."""

    label = "direct-pnfs-sharded"

    def __init__(self, system: ShardedDirectPnfs, node: Node):
        from repro.pnfs.client import PnfsClient

        self.system = system
        self.node = node
        self._shards = [
            PnfsClient(system.sim, node, mds, system.cfg)
            for mds in system.mds_list
        ]

    def mount(self):
        first = None
        for shard in self._shards:
            result = yield from shard.mount()
            first = first if first is not None else result
        return first

    # Broadcast paths: each pNFS MDS's *backend* is itself a sharded
    # client that broadcasts/unions — routing through one MDS suffices
    # (and broadcasting here too would double-create).
    def mkdir(self, path: str):
        if is_broadcast_path(path):
            return (yield from self._shards[0].mkdir(path))
        return (yield from self._shard(path).mkdir(path))

    def readdir(self, path: str):
        if is_broadcast_path(path):
            return (yield from self._shards[0].readdir(path))
        return (yield from self._shard(path).readdir(path))

    def remove(self, path: str):
        if is_broadcast_path(path):
            return (yield from self._shards[0].remove(path))
        return (yield from self._shard(path).remove(path))
