"""Direct-pNFS data servers (paper §5).

A data server is a stock NFSv4.1 server placed *on* a parallel-FS
storage node.  Its backend is a local-only parallel-FS client — the
loopback conduit of the prototype: "the Direct-pNFS data servers
simulate direct storage access by way of the existing PVFS2 client and
the loopback device.  The PVFS2 client on the data servers functions
solely as a conduit between the NFSv4 server and the PVFS2 storage node
on the node."  Because clients hold accurate layouts, a data server is
only ever asked for bytes its own node stores; data servers never
communicate with each other.

The loopback hop costs an extra user↔kernel copy per byte, charged via
``loopback_copy_per_byte`` — the reason PVFS2 edges past Direct-pNFS at
eight clients in the single-file read experiment (§6.2, Figure 7b).
"""

from __future__ import annotations

from repro.nfs.config import NfsConfig
from repro.nfs.server import Nfs4Server
from repro.sim.engine import Simulator
from repro.sim.node import Node

__all__ = ["build_data_server", "DEFAULT_LOOPBACK_COPY", "DEFAULT_LOOPBACK_READ_EXTRA"]

#: Default per-byte CPU cost of the loopback conduit copy (s/byte), and
#: the additional read-side copy (replies cross the conduit's transfer
#: buffers once more than writes do).
DEFAULT_LOOPBACK_COPY = 8e-9
DEFAULT_LOOPBACK_READ_EXTRA = 12e-9


def build_data_server(
    sim: Simulator,
    node: Node,
    pvfs_system,
    cfg: NfsConfig,
    loopback_copy_per_byte: float = DEFAULT_LOOPBACK_COPY,
    loopback_read_extra_per_byte: float = DEFAULT_LOOPBACK_READ_EXTRA,
) -> Nfs4Server:
    """NFSv4.1 data server on ``node`` over a local-only conduit."""
    conduit = pvfs_system.make_client(node, local_only=True)
    return Nfs4Server(
        sim,
        node,
        conduit,
        cfg,
        name=f"{node.name}.direct-ds",
        loopback_copy_per_byte=loopback_copy_per_byte,
        extra_read_per_byte=loopback_read_extra_per_byte,
    )
