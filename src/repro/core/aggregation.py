"""Pluggable aggregation drivers (paper §4.3).

The NFSv4.1 file layout natively expresses round-robin striping and a
cyclical device pattern; anything richer — variable stripe sizes,
replicated or hierarchical striping — needs an *aggregation driver*: a
small, OS-independent component that tells the client how the parallel
file system maps file bytes onto storage nodes.  Drivers are modelled
on PVFS2's distribution drivers and registered by name; the layout
carries ``{"type": <name>, ...params}`` and the client instantiates the
matching driver.

A driver's single job is :meth:`AggregationDriver.map`: split a byte
range into :class:`IoSegment`\\ s, each naming a *device slot* (an index
into the layout's device list).  Data servers are addressed with
logical file offsets (sparse packing), so segments carry the logical
offset unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AggregationDriver",
    "DeviceCycleDriver",
    "HierarchicalDriver",
    "IoSegment",
    "ReplicatedDriver",
    "RoundRobinDriver",
    "VarStripDriver",
    "driver_for",
    "register_driver",
]


@dataclass(frozen=True)
class IoSegment:
    """One contiguous piece of an I/O, bound for one device slot."""

    device_slot: int
    offset: int  # logical file offset (sparse data-server addressing)
    length: int


class AggregationDriver(ABC):
    """Maps logical byte ranges onto layout device slots."""

    name: str = "abstract"

    @abstractmethod
    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        """Split ``[offset, offset+nbytes)`` into per-device segments.

        Segments are returned in logical order.  ``for_write`` matters
        for replicated placements (writes fan out to every replica).
        """

    @abstractmethod
    def describe(self) -> dict:
        """Self-description: ``{"type": name, ...params}``."""

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be >= 0")


class RoundRobinDriver(AggregationDriver):
    """Standard NFSv4.1 file-layout striping: stripe *i* on slot
    *(i + first_stripe_index) mod n* (RFC 5661's first stripe index)."""

    name = "round_robin"

    def __init__(self, nslots: int, stripe_unit: int, first_slot: int = 0):
        if nslots < 1 or stripe_unit < 1:
            raise ValueError("nslots and stripe_unit must be >= 1")
        if not 0 <= first_slot < nslots:
            raise ValueError("first_slot out of range")
        self.nslots = nslots
        self.stripe_unit = stripe_unit
        self.first_slot = first_slot

    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        self._check(offset, nbytes)
        out: list[IoSegment] = []
        pos, end = offset, offset + nbytes
        unit = self.stripe_unit
        while pos < end:
            stripe = pos // unit
            take = min(end - pos, (stripe + 1) * unit - pos)
            out.append(IoSegment((stripe + self.first_slot) % self.nslots, pos, take))
            pos += take
        return _merge(out)

    def describe(self) -> dict:
        return {
            "type": self.name,
            "nslots": self.nslots,
            "stripe_unit": self.stripe_unit,
            "first_slot": self.first_slot,
        }


class DeviceCycleDriver(AggregationDriver):
    """Explicit cyclical device pattern — the second scheme NFSv4.1
    supports natively: stripe *i* goes to ``cycle[i mod len(cycle)]``.

    A slot may appear several times per cycle, giving weighted striping.
    """

    name = "device_cycle"

    def __init__(self, cycle: list[int], stripe_unit: int):
        if not cycle:
            raise ValueError("cycle must be non-empty")
        if stripe_unit < 1:
            raise ValueError("stripe_unit must be >= 1")
        if any(s < 0 for s in cycle):
            raise ValueError("device slots must be >= 0")
        self.cycle = list(cycle)
        self.stripe_unit = stripe_unit

    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        self._check(offset, nbytes)
        out: list[IoSegment] = []
        pos, end = offset, offset + nbytes
        unit = self.stripe_unit
        while pos < end:
            stripe = pos // unit
            take = min(end - pos, (stripe + 1) * unit - pos)
            out.append(IoSegment(self.cycle[stripe % len(self.cycle)], pos, take))
            pos += take
        return _merge(out)

    def describe(self) -> dict:
        return {"type": self.name, "cycle": list(self.cycle), "stripe_unit": self.stripe_unit}


class VarStripDriver(AggregationDriver):
    """Variable stripe sizes: repeating (slot, length) pattern (ref [24])."""

    name = "varstrip"

    def __init__(self, pattern: list[tuple[int, int]]):
        if not pattern:
            raise ValueError("pattern must be non-empty")
        for slot, length in pattern:
            if slot < 0 or length < 1:
                raise ValueError("bad pattern entry")
        self.pattern = [(int(s), int(l)) for s, l in pattern]
        self.cycle = sum(l for _, l in self.pattern)

    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        self._check(offset, nbytes)
        out: list[IoSegment] = []
        pos, end = offset, offset + nbytes
        while pos < end:
            _k, rem = divmod(pos, self.cycle)
            for slot, length in self.pattern:
                if rem < length:
                    take = min(end - pos, length - rem)
                    out.append(IoSegment(slot, pos, take))
                    pos += take
                    break
                rem -= length
        return _merge(out)

    def describe(self) -> dict:
        return {"type": self.name, "pattern": list(self.pattern)}


class ReplicatedDriver(AggregationDriver):
    """Mirrored striping (RAID-1 over an inner placement, refs [25, 26]).

    Writes fan out to every replica group; reads alternate between
    replicas by stripe for load spreading.  ``replicas`` is a list of
    slot *offsets*: replica *r* of inner slot *s* is slot
    ``s + replicas[r]``.
    """

    name = "replicated"

    def __init__(self, inner: AggregationDriver, replicas: list[int]):
        if not replicas:
            raise ValueError("need at least one replica offset")
        self.inner = inner
        self.replicas = list(replicas)

    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        segments = self.inner.map(offset, nbytes, for_write)
        if for_write:
            return [
                IoSegment(seg.device_slot + off, seg.offset, seg.length)
                for seg in segments
                for off in self.replicas
            ]
        out = []
        for i, seg in enumerate(segments):
            off = self.replicas[i % len(self.replicas)]
            out.append(IoSegment(seg.device_slot + off, seg.offset, seg.length))
        return out

    def describe(self) -> dict:
        return {
            "type": self.name,
            "inner": self.inner.describe(),
            "replicas": list(self.replicas),
        }


class HierarchicalDriver(AggregationDriver):
    """Two-level striping: outer units round-robin across groups, inner
    units round-robin across the slots of a group (Clusterfile-style)."""

    name = "hierarchical"

    def __init__(self, ngroups: int, group_size: int, outer_unit: int, inner_unit: int):
        if ngroups < 1 or group_size < 1:
            raise ValueError("ngroups/group_size must be >= 1")
        if outer_unit < inner_unit or outer_unit % inner_unit:
            raise ValueError("outer_unit must be a multiple of inner_unit")
        self.ngroups = ngroups
        self.group_size = group_size
        self.outer_unit = outer_unit
        self.inner_unit = inner_unit

    def map(self, offset: int, nbytes: int, for_write: bool = False) -> list[IoSegment]:
        self._check(offset, nbytes)
        out: list[IoSegment] = []
        pos, end = offset, offset + nbytes
        while pos < end:
            outer = pos // self.outer_unit
            group = outer % self.ngroups
            within_outer = pos - outer * self.outer_unit
            inner = within_outer // self.inner_unit
            slot = group * self.group_size + inner % self.group_size
            take = min(
                end - pos,
                (inner + 1) * self.inner_unit - within_outer,
            )
            out.append(IoSegment(slot, pos, take))
            pos += take
        return _merge(out)

    def describe(self) -> dict:
        return {
            "type": self.name,
            "ngroups": self.ngroups,
            "group_size": self.group_size,
            "outer_unit": self.outer_unit,
            "inner_unit": self.inner_unit,
        }


def _merge(segments: list[IoSegment]) -> list[IoSegment]:
    """Coalesce adjacent segments on the same slot."""
    out: list[IoSegment] = []
    for seg in segments:
        if (
            out
            and out[-1].device_slot == seg.device_slot
            and out[-1].offset + out[-1].length == seg.offset
        ):
            prev = out.pop()
            out.append(IoSegment(prev.device_slot, prev.offset, prev.length + seg.length))
        else:
            out.append(seg)
    return out


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Callable[[dict], AggregationDriver]] = {}


def register_driver(name: str, factory: Callable[[dict], AggregationDriver]) -> None:
    """Register an aggregation-driver factory (pluggable, §4.3)."""
    if name in _REGISTRY:
        raise ValueError(f"aggregation driver {name!r} already registered")
    _REGISTRY[name] = factory


def driver_for(desc: dict) -> AggregationDriver:
    """Instantiate the driver described by ``desc`` (from a layout)."""
    kind = desc.get("type")
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"no aggregation driver registered for {kind!r}") from None
    return factory(desc)


register_driver(
    RoundRobinDriver.name,
    lambda d: RoundRobinDriver(d["nslots"], d["stripe_unit"], d.get("first_slot", 0)),
)
register_driver(
    DeviceCycleDriver.name,
    lambda d: DeviceCycleDriver(d["cycle"], d["stripe_unit"]),
)
register_driver(
    VarStripDriver.name,
    lambda d: VarStripDriver([tuple(p) for p in d["pattern"]]),
)
register_driver(
    ReplicatedDriver.name,
    lambda d: ReplicatedDriver(driver_for(d["inner"]), d["replicas"]),
)
register_driver(
    HierarchicalDriver.name,
    lambda d: HierarchicalDriver(
        d["ngroups"], d["group_size"], d["outer_unit"], d["inner_unit"]
    ),
)
