"""The layout translator (paper §4.2) — heart of Direct-pNFS.

Converts the exported parallel file system's own data distribution into
a pNFS file-based layout so that clients learn the *exact* location of
every byte.  Per the paper, the translator is independent of the
underlying parallel FS: it never interprets FS-specific layout blobs.
The parallel FS hands over only (aggregation type, parameters) — here,
the portable ``describe()`` dict of a PVFS2 distribution — and the
translator (with the pNFS server supplying filehandles) assembles the
layout.  Translation rules are a registry keyed by aggregation type, so
a new parallel FS needs only to register how its placement maps onto an
aggregation-driver description.
"""

from __future__ import annotations

from typing import Callable

from repro.pnfs.layout import FileLayout
from repro.pnfs.providers import LayoutProvider
from repro.vfs.api import FileSystemClient

__all__ = ["LayoutTranslator", "register_translation"]

#: dist-type -> fn(dist_desc) -> aggregation description
_TRANSLATIONS: dict[str, Callable[[dict], dict]] = {}


def register_translation(dist_type: str, fn: Callable[[dict], dict]) -> None:
    """Register how a parallel-FS aggregation type maps to a driver desc."""
    if dist_type in _TRANSLATIONS:
        raise ValueError(f"translation for {dist_type!r} already registered")
    _TRANSLATIONS[dist_type] = fn


def translate_aggregation(dist_desc: dict) -> dict:
    """Map a distribution description to an aggregation-driver description."""
    kind = dist_desc.get("type")
    try:
        fn = _TRANSLATIONS[kind]
    except KeyError:
        raise ValueError(f"no layout translation for aggregation type {kind!r}") from None
    return fn(dist_desc)


# PVFS2's stock distributions.  simple_stripe is exactly NFSv4.1
# round-robin; varstrip needs the optional aggregation driver.
register_translation(
    "simple_stripe",
    lambda d: {
        "type": "round_robin",
        "nslots": d["nservers"],
        "stripe_unit": d["stripe_size"],
        "first_slot": d.get("start_server", 0),
    },
)
register_translation(
    "varstrip",
    lambda d: {"type": "varstrip", "pattern": [tuple(p) for p in d["pattern"]]},
)


class LayoutTranslator(LayoutProvider):
    """Layout provider for Direct-pNFS metadata servers.

    ``meta_backend`` is the parallel-FS client colocated with the MDS
    (its metadata lookups are loopback — §4.1's elimination of remote
    parallel FS metadata requests).  ``device_order[i]`` is the device
    slot of the data server colocated with parallel-FS storage server
    ``i`` (identity when data servers are built in daemon order).
    """

    def __init__(
        self,
        meta_backend: FileSystemClient,
        device_order: list[int] | None = None,
        commit_through_mds: bool = False,
    ):
        self.meta_backend = meta_backend
        self.device_order = device_order
        self.commit_through_mds = commit_through_mds
        self.translated = 0

    def get_layout(self, fh, path: str):
        # One loopback metadata lookup: aggregation type + parameters.
        f = yield from self.meta_backend.open_by_handle(fh)
        dist_desc = f.state["dist"]
        aggregation = translate_aggregation(dist_desc)
        nservers = dist_desc.get(
            "nservers", len({s for s, _l in dist_desc.get("pattern", [])})
        )
        order = self.device_order or list(range(nservers))
        if len(order) != nservers:
            raise ValueError(
                f"device_order has {len(order)} entries for {nservers} servers"
            )
        # The pNFS server specifies the filehandles (§4.2): the backend
        # object handle is valid at every data server.
        self.translated += 1
        return FileLayout(
            device_slots=list(order),
            fhs=[fh] * nservers,
            aggregation=aggregation,
            policy={"source": "layout-translator", "dist_type": dist_desc.get("type")},
            commit_through_mds=self.commit_through_mds,
        )
