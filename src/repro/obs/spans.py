"""Span-based tracing: what every layer was doing, on a timeline.

A :class:`SpanCollector` installed around simulated activity records
one span per interesting unit of work — a client ``read``/``write``/
``fsync``, each RPC attempt, the server-side handler execution, each
disk request — and exports them in the Chrome trace-event JSON format,
so a run can be dropped into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` and read as a flame chart::

    from repro.obs import SpanCollector

    with SpanCollector(sim) as spans:
        sim.run(until=proc)
    spans.write_chrome_trace("run.trace.json")

Pay-for-what-you-use: instrumented code checks the module-level
``ACTIVE`` slot (one attribute load) and does nothing when no collector
is installed — the same pattern as :class:`repro.tracing.RpcTracer`,
so uninstrumented benchmark runs keep their event schedule and cost.

Tracks: each span carries a ``track`` (rendered as the Chrome "pid",
one per node or component) and a lane within it (the "tid"), assigned
per simulation process so concurrent work on one node stacks into
parallel lanes instead of overlapping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator

__all__ = ["Span", "SpanCollector", "current_collector"]

#: The installed collector, if any (read by instrumented code paths).
ACTIVE: Optional["SpanCollector"] = None


def current_collector() -> Optional["SpanCollector"]:
    """The installed span collector, if any."""
    return ACTIVE


@dataclass
class Span:
    """One timed unit of work on some component's timeline."""

    name: str
    cat: str
    track: str
    lane: int
    start: float
    end: Optional[float] = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in sim seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


class SpanCollector:
    """Context manager collecting :class:`Span` records for one sim."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.spans: list[Span] = []
        self._lanes: dict[tuple, int] = {}
        self._lane_count: dict[str, int] = {}

    # -- installation ------------------------------------------------------
    def __enter__(self) -> "SpanCollector":
        global ACTIVE
        if ACTIVE is not None:
            raise RuntimeError("a SpanCollector is already installed")
        ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global ACTIVE
        ACTIVE = None

    # -- recording ---------------------------------------------------------
    def _lane_for(self, track: str) -> int:
        """Lane within ``track`` for the currently running process.

        One lane per (track, process): concurrent spans on the same
        component land in parallel lanes; sequential work from the same
        process reuses its lane.
        """
        proc = self.sim._active_process
        key = (track, id(proc) if proc is not None else 0)
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lane_count.get(track, 0)
            self._lane_count[track] = lane + 1
            self._lanes[key] = lane
        return lane

    def begin(self, name: str, cat: str, track: str, **args) -> Span:
        """Open a span on ``track`` starting now."""
        span = Span(
            name=name,
            cat=cat,
            track=track,
            lane=self._lane_for(track),
            start=self.sim.now,
            args=args,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span, **extra_args) -> None:
        """Close ``span`` now; ``extra_args`` merge into its args."""
        span.end = self.sim.now
        if extra_args:
            span.args.update(extra_args)

    # -- analysis ----------------------------------------------------------
    def by_category(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = {}
        for s in self.spans:
            out.setdefault(s.cat, []).append(s)
        return out

    # -- export ------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event JSON object.

        Sim seconds become trace microseconds.  Spans still open at
        export time get zero duration and an ``unfinished`` marker
        rather than being dropped — an unfinished span is usually the
        bug being hunted.
        """
        pids = {track: i + 1 for i, track in enumerate(
            sorted({s.track for s in self.spans})
        )}
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
            for track, pid in pids.items()
        ]
        for s in self.spans:
            args = dict(s.args)
            end = s.end
            if end is None:
                end = s.start
                args["unfinished"] = True
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": (end - s.start) * 1e6,
                    "pid": pids[s.track],
                    "tid": s.lane,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Write :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, default=str)
