"""Observability: metrics registry, sim-time sampler, span tracing.

The diagnostic substrate behind the paper's per-component arguments
(§6.2.1 attributes each regime to disks, NICs, or CPUs):

* :class:`MetricsRegistry` + :class:`Sampler` — named counters,
  gauges, and histograms over every component, sampled into time
  series (:mod:`repro.obs.metrics`, wired by :mod:`repro.obs.attach`);
* :class:`SpanCollector` — span tracing from client op through RPC
  attempt, server handler, and disk request, exported as Chrome
  trace-event JSON for Perfetto (:mod:`repro.obs.spans`);
* ``repro metrics`` / ``repro trace`` CLI verbs and the
  ``run_cell(metrics=True, trace=True)`` harness hooks consume both.

Everything is pay-for-what-you-use: without a collector installed and
a registry attached, the instrumented code paths cost one attribute
load (spans) or a plain integer increment (counters).
"""

from repro.obs.attach import (
    observe_client,
    observe_deployment,
    observe_engine,
    observe_network,
    observe_node,
    observe_rpc_server,
    observe_storage_daemon,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Sampler
from repro.obs.spans import Span, SpanCollector, current_collector

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sampler",
    "Span",
    "SpanCollector",
    "current_collector",
    "observe_client",
    "observe_deployment",
    "observe_engine",
    "observe_network",
    "observe_node",
    "observe_rpc_server",
    "observe_storage_daemon",
]
