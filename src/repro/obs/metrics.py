"""Metrics registry: named counters, gauges, histograms + a sampler.

Components do not push into the registry on their hot paths — they keep
the plain attribute counters they already have (``nic.tx_bytes``,
``disk.busy_time``, ``client.writeback_errors``, ...) and an
observation pass *registers* them afterwards:

* :meth:`MetricsRegistry.counter` — a monotonic count the owner
  increments directly (cheap ``+= 1``, registry or not);
* :meth:`MetricsRegistry.gauge` — a zero-argument callable sampled on
  demand, the bridge to existing attribute counters;
* :meth:`MetricsRegistry.histogram` — a distribution with cached-sort
  nearest-rank percentiles (backed by
  :class:`repro.sim.stats.LatencyRecorder`).

:class:`Sampler` walks the registry at a fixed sim-time interval and
produces per-metric time series — the raw material for "disk queue
depth over the run" style plots.  It drives itself with a re-armed
:class:`~repro.sim.engine.Timeout` and must be stopped explicitly
(or via its context-manager form), so a drained event queue still ends
the run.

See :mod:`repro.obs.attach` for the functions that wire the simulator's
components into a registry.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.stats import LatencyRecorder

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Sampler"]


class Counter:
    """Named monotonic counter owned by the registry."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Named instantaneous reading, backed by a callable."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]):
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class Histogram:
    """Named distribution with count/mean/percentile summaries."""

    __slots__ = ("name", "_rec")

    def __init__(self, name: str):
        self.name = name
        self._rec = LatencyRecorder(name)

    def observe(self, value: float) -> None:
        self._rec.record(value)

    @property
    def count(self) -> int:
        return self._rec.count

    def percentile(self, p: float) -> float:
        return self._rec.percentile(p)

    def summary(self) -> dict:
        if self._rec.count == 0:
            return {"count": 0}
        return {
            "count": self._rec.count,
            "mean": self._rec.mean,
            "p50": self._rec.percentile(50),
            "p95": self._rec.percentile(95),
            "max": self._rec.percentile(100),
        }


class MetricsRegistry:
    """Flat namespace of metrics, collected into one dict on demand.

    Metric names are dotted paths (``s0.disk0.busy_seconds``); a name
    belongs to exactly one kind.  ``counter`` is get-or-create so two
    components may share one count; ``gauge`` registration is
    first-wins-raises to catch accidental double observation.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_fresh(self, name: str, kind: dict) -> None:
        for space in (self._counters, self._gauges, self._histograms):
            if space is not kind and name in space:
                raise ValueError(f"metric {name!r} already registered with another kind")

    def counter(self, name: str) -> Counter:
        self._check_fresh(name, self._counters)
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        self._check_fresh(name, self._gauges)
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        g = self._gauges[name] = Gauge(name, fn)
        return g

    def histogram(self, name: str) -> Histogram:
        self._check_fresh(name, self._histograms)
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def names(self) -> list[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def collect(self) -> dict:
        """Every metric's current value, flat, sorted by name.

        Counters and gauges collapse to numbers; histograms to their
        summary dicts.
        """
        out: dict = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.read()
        for name, h in self._histograms.items():
            out[name] = h.summary()
        return dict(sorted(out.items()))

    def sample_numeric(self) -> dict[str, float]:
        """Counters and gauges only — what the :class:`Sampler` records."""
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.read()
        return out


class Sampler:
    """Sim-time periodic snapshot of a registry's numeric metrics.

    Between :meth:`start` and :meth:`stop` the sampler records
    ``(t, {name: value})`` every ``interval`` sim seconds.  The tick is
    a re-armed Timeout with a callback — no Process — so an idle
    simulation is two heap entries away from draining, and stopping
    cancels cleanly.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry, interval: float = 0.25):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.samples: list[tuple[float, dict[str, float]]] = []
        self._tick = None
        self._started = False
        self._running = False

    def start(self) -> "Sampler":
        if self._started:
            raise RuntimeError("a Sampler is single-use; make a new one")
        self._started = True
        self._running = True
        self._take()  # t0 sample, then one every interval
        self._arm()
        return self

    def stop(self) -> None:
        """Take a final sample and disarm the tick."""
        if not self._running:
            return
        self._running = False
        if not self.samples or self.samples[-1][0] != self.sim.now:
            self._take()
        if self._tick is not None:
            # A tick still pending on the heap fires as a no-op; one
            # already processed stays processed.  Either way, detach.
            self._tick._discard_callback(self._on_tick)

    def __enter__(self) -> "Sampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _take(self) -> None:
        self.samples.append((self.sim.now, self.registry.sample_numeric()))

    def _on_tick(self, _ev) -> None:
        if not self._running:
            return
        self._take()
        self._arm()

    def _arm(self) -> None:
        # Reuse one Timeout across ticks (the runner/RPC re-arm idiom):
        # _on_tick runs after the tick is processed, so reset() is legal.
        if self._tick is None:
            self._tick = self.sim.timeout(self.interval)
        else:
            self._tick = self._tick.reset(self.interval)
        self._tick.add_callback(self._on_tick)

    # -- analysis ----------------------------------------------------------
    def series(self, name: str) -> list[tuple[float, float]]:
        """The time series of one metric: ``[(t, value), ...]``."""
        return [(t, vals[name]) for t, vals in self.samples if name in vals]

    def as_dict(self) -> dict:
        """JSON-shaped form: sample times plus one series per metric."""
        times = [t for t, _vals in self.samples]
        names = sorted({n for _t, vals in self.samples for n in vals})
        return {
            "interval": self.interval,
            "t": times,
            "series": {
                n: [vals.get(n) for _t, vals in self.samples] for n in names
            },
        }
