"""Wire simulator components into a :class:`MetricsRegistry`.

Components keep their plain attribute counters (free when nobody is
looking); these helpers register gauges over them so a registry — and
therefore a :class:`~repro.obs.metrics.Sampler` — sees every layer
under dotted names::

    s0.cpu.busy_seconds      s0.nic.tx_bytes       s0.disk0.busy_seconds
    s0.disk0.queue           mds.rpc.calls_served  c0.client.writeback_errors

Everything here is duck-typed on the attribute names the components
already expose, so this module imports nothing from the simulation
layers and can be attached to any object that looks right (the tests
attach bare stubs).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "observe_node",
    "observe_rpc_server",
    "observe_client",
    "observe_storage_daemon",
    "observe_network",
    "observe_engine",
    "observe_deployment",
]


def _gauge_attr(reg: MetricsRegistry, name: str, obj, attr: str) -> None:
    reg.gauge(name, lambda: getattr(obj, attr))


def observe_node(reg: MetricsRegistry, node) -> None:
    """CPU, NIC, and disk counters of one node."""
    n = node.name
    _gauge_attr(reg, f"{n}.cpu.busy_seconds", node.cpu, "busy_time")
    reg.gauge(f"{n}.cpu.queue", lambda: node.cpu.cores.queue_len)
    nic = node.nic
    for attr in ("tx_bytes", "rx_bytes", "loopback_bytes", "flows_dropped", "flows_stranded"):
        _gauge_attr(reg, f"{n}.nic.{attr}", nic, attr)
    for i, disk in enumerate(node.disks):
        d = f"{n}.disk{i}"
        _gauge_attr(reg, f"{d}.busy_seconds", disk, "busy_time")
        _gauge_attr(reg, f"{d}.read_bytes", disk, "read_bytes")
        _gauge_attr(reg, f"{d}.write_bytes", disk, "write_bytes")
        _gauge_attr(reg, f"{d}.requests", disk, "requests")
        # Queue depth: requests waiting for the arm plus the one on it.
        reg.gauge(
            f"{d}.queue", lambda a=disk.arm: a.queue_len + a.in_use
        )


def observe_rpc_server(reg: MetricsRegistry, server, name: str = "") -> None:
    """RPC service counters: served/errors/replays/retransmissions."""
    n = name or server.name
    for attr in (
        "calls_served",
        "errors",
        "calls_replayed",
        "retransmissions",
        "client_timeouts",
    ):
        _gauge_attr(reg, f"{n}.rpc.{attr}", server, attr)
    threads = server.threads
    reg.gauge(f"{n}.rpc.threads_busy", lambda: threads.in_use)
    reg.gauge(f"{n}.rpc.threads_queue", lambda: threads.queue_len)
    _gauge_attr(reg, f"{n}.rpc.threads_high_water", threads, "high_water")


def observe_client(reg: MetricsRegistry, client, name: str = "") -> None:
    """File-system client counters; NFS page-cache ones when present."""
    n = name or f"{client.node.name}.{client.label}"
    _gauge_attr(reg, f"{n}.bytes_read", client, "bytes_read")
    _gauge_attr(reg, f"{n}.bytes_written", client, "bytes_written")
    for attr in (
        "cache_hit_bytes",
        "cache_miss_bytes",
        "readahead_issued_bytes",
        "readahead_used_bytes",
        "readahead_wasted_bytes",
        "writeback_errors",
    ):
        if hasattr(client, attr):
            _gauge_attr(reg, f"{n}.{attr}", client, attr)
    for attr in ("failovers", "recoveries", "proxied_bytes"):
        if hasattr(client, attr):
            _gauge_attr(reg, f"{n}.{attr}", client, attr)


def observe_storage_daemon(reg: MetricsRegistry, daemon) -> None:
    """PVFS2 storage-daemon counters: backlog, buffers, crash count."""
    n = daemon.name
    _gauge_attr(reg, f"{n}.bytes_read", daemon, "bytes_read")
    _gauge_attr(reg, f"{n}.bytes_written", daemon, "bytes_written")
    reg.gauge(f"{n}.dirty_backlog", lambda: daemon.dirty_backlog)
    flow = daemon.flow_pool
    reg.gauge(f"{n}.flow_buffers_busy", lambda: flow.in_use)
    _gauge_attr(reg, f"{n}.flow_buffers_high_water", flow, "high_water")
    _gauge_attr(reg, f"{n}.crashes", daemon, "crashes")


def observe_network(reg: MetricsRegistry, network) -> None:
    """Network-wide flow counters (model-independent)."""
    for attr in ("flows_completed", "flows_chunked", "flows_fluid"):
        _gauge_attr(reg, f"net.{attr}", network, attr)
    reg.gauge("net.fluid_recomputes", lambda: network.fluid_recomputes)


def observe_engine(reg: MetricsRegistry, sim) -> None:
    """Event-kernel counters: lane split, heap depth, events-per-run.

    Exposes :class:`~repro.sim.engine.EngineStats` so a sampler can
    plot events-per-RPC against the RPC-server counters.
    """
    stats = sim.stats
    for attr in (
        "events_scheduled",
        "events_processed",
        "fast_lane_events",
        "heap_events",
        "peak_heap",
    ):
        _gauge_attr(reg, f"engine.{attr}", stats, attr)


def observe_deployment(reg: MetricsRegistry, dep, clients=()) -> None:
    """Observe a whole :class:`~repro.cluster.configs.Deployment`.

    Registers every testbed node, every server-side RPC service
    (NFS data/metadata servers and PVFS2 daemons, found by duck
    typing), the network, and any ``clients`` passed in.
    """
    tb = dep.testbed
    observe_engine(reg, tb.sim)
    observe_network(reg, tb.network)
    for node in tb.server_nodes + tb.client_nodes + [tb.extra_node]:
        observe_node(reg, node)
    seen = set()
    for server in list(getattr(dep, "servers", ())) or []:
        rpc = getattr(server, "rpc", None)
        if rpc is not None and hasattr(rpc, "calls_served") and id(rpc) not in seen:
            seen.add(id(rpc))
            observe_rpc_server(reg, rpc)
    for daemon in getattr(dep.pvfs, "daemons", ()):
        observe_storage_daemon(reg, daemon)
        if hasattr(daemon, "rpc") and id(daemon.rpc) not in seen:
            seen.add(id(daemon.rpc))
            observe_rpc_server(reg, daemon.rpc)
    for client in clients:
        observe_client(reg, client)
